package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"lbchat/internal/geom"
)

// ChunkSource serves LBTC chunks by index — the random-access seam behind
// Window. The resident file source, in-memory buffers, the sequential
// ChunkReader adapter, and the remote chunk client (internal/traceserve)
// all implement it, so the window never knows whether a chunk came from a
// local decode or crossed a network.
//
// Implementations must be safe for concurrent ReadChunk calls: the
// window's adaptive prefetcher keeps up to depth-k fetches in flight at
// once. Sources that are inherently sequential serialize internally (see
// NewSequentialSource).
type ChunkSource interface {
	// DT returns the stream's tick interval in seconds.
	DT() float64
	// NumVehicles returns the stream's vehicle count.
	NumVehicles() int
	// ChunkTicks returns the stream's chunk capacity in ticks.
	ChunkTicks() int
	// NumTicks returns the stream's total tick count.
	NumTicks() int
	// ReadChunk decodes chunk idx into dst (grown as needed; dst may be
	// nil) and returns the fetch result. Reading past the last chunk is an
	// error. The returned points are owned by the caller.
	ReadChunk(idx int, dst []geom.Point) (ChunkFetch, error)
	// Close releases the source's resources (file handles, connections).
	Close() error
}

// ChunkFetch is one completed chunk read: the decoded positions
// (row-major, Ticks × vehicles) and how hard the fetch was.
type ChunkFetch struct {
	// Pts holds the chunk's positions, backed by the caller's dst when its
	// capacity sufficed.
	Pts []geom.Point
	// Ticks is the chunk's tick count (the tail chunk may be short).
	Ticks int
	// Retries counts transport-level retries the fetch needed; always zero
	// for local sources.
	Retries int
}

// NumChunks returns the chunk count of a stream with the given shape.
func NumChunks(totalTicks, chunkTicks int) int {
	if totalTicks <= 0 || chunkTicks <= 0 {
		return 0
	}
	return (totalTicks + chunkTicks - 1) / chunkTicks
}

// DecodePoints decodes an LBTC chunk body (little-endian float64 x/y
// pairs) into dst, growing it as needed. The body length must be a
// multiple of 16.
func DecodePoints(raw []byte, dst []geom.Point) ([]geom.Point, error) {
	if len(raw)%16 != 0 {
		return nil, fmt.Errorf("trace: chunk body of %d bytes is not a whole number of points", len(raw))
	}
	n := len(raw) / 16
	if cap(dst) < n {
		dst = make([]geom.Point, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i].X = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		dst[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
	}
	return dst, nil
}

// chunkIndexEntry locates one chunk inside a seekable LBTC stream.
type chunkIndexEntry struct {
	// off is the byte offset of the chunk body (past its length field).
	off int64
	// ticks is the chunk's tick count.
	ticks int
}

// IndexedChunkSource is a random-access ChunkSource over a seekable LBTC
// stream (io.ReaderAt): the constructor scans the chunk headers once to
// build an offset index, and every ReadChunk is then one positioned read
// plus a decode — no shared cursor, so concurrent fetches never contend.
type IndexedChunkSource struct {
	r          io.ReaderAt
	dt         float64
	vehicles   int
	chunkTicks int
	totalTicks int
	index      []chunkIndexEntry
	closer     io.Closer
	scratch    sync.Pool // *[]byte raw-chunk buffers for concurrent decodes
}

// NewIndexedSource scans the LBTC stream in r (header plus chunk length
// fields, seeking over bodies) and returns a random-access source over it.
// The source does not own r; see OpenFileSource for the owning variant.
func NewIndexedSource(r io.ReaderAt) (*IndexedChunkSource, error) {
	head := make([]byte, streamHeaderLen)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("trace: reading stream header: %w", err)
	}
	dt, vehicles, chunkTicks, err := decodeStreamHeader(head)
	if err != nil {
		return nil, err
	}
	s := &IndexedChunkSource{
		r: r, dt: dt, vehicles: vehicles, chunkTicks: chunkTicks,
	}
	off := int64(streamHeaderLen)
	var lenBuf [4]byte
	for chunk := 0; ; chunk++ {
		if _, err := r.ReadAt(lenBuf[:], off); err != nil {
			return nil, &ChunkError{Chunk: chunk, FirstTick: s.totalTicks,
				Err: fmt.Errorf("reading chunk length: %w", err)}
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if n == 0 {
			return s, nil
		}
		if n > chunkTicks {
			return nil, &ChunkError{Chunk: chunk, FirstTick: s.totalTicks,
				Err: fmt.Errorf("chunk of %d ticks exceeds capacity %d", n, chunkTicks)}
		}
		body := int64(n) * int64(vehicles) * 16
		s.index = append(s.index, chunkIndexEntry{off: off + 4, ticks: n})
		s.totalTicks += n
		off += 4 + body
	}
}

// OpenFileSource opens an LBTC file as a random-access chunk source that
// owns the file handle: Close releases it.
func OpenFileSource(path string) (*IndexedChunkSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	s, err := NewIndexedSource(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: indexing %s: %w", path, err)
	}
	s.closer = f
	return s, nil
}

// NewBytesSource wraps an in-memory LBTC stream as a random-access chunk
// source.
func NewBytesSource(raw []byte) (*IndexedChunkSource, error) {
	return NewIndexedSource(bytes.NewReader(raw))
}

// DT returns the stream's tick interval in seconds.
func (s *IndexedChunkSource) DT() float64 { return s.dt }

// NumVehicles returns the stream's vehicle count.
func (s *IndexedChunkSource) NumVehicles() int { return s.vehicles }

// ChunkTicks returns the stream's chunk capacity in ticks.
func (s *IndexedChunkSource) ChunkTicks() int { return s.chunkTicks }

// NumTicks returns the stream's total tick count.
func (s *IndexedChunkSource) NumTicks() int { return s.totalTicks }

// NumChunks returns the stream's chunk count.
func (s *IndexedChunkSource) NumChunks() int { return len(s.index) }

// ReadRawChunk reads chunk idx's encoded body into dst (grown as needed)
// and returns it alongside the chunk's tick count. This is the zero-decode
// path the chunk server uses to put bodies straight on the wire.
func (s *IndexedChunkSource) ReadRawChunk(idx int, dst []byte) ([]byte, int, error) {
	if idx < 0 || idx >= len(s.index) {
		return nil, 0, fmt.Errorf("trace: chunk %d outside stream of %d chunks", idx, len(s.index))
	}
	e := s.index[idx]
	n := e.ticks * s.vehicles * 16
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	if _, err := s.r.ReadAt(dst, e.off); err != nil {
		return nil, 0, fmt.Errorf("trace: reading chunk %d body: %w", idx, err)
	}
	return dst, e.ticks, nil
}

// ReadChunk implements ChunkSource: one positioned read plus a decode,
// safe for concurrent use.
func (s *IndexedChunkSource) ReadChunk(idx int, dst []geom.Point) (ChunkFetch, error) {
	var raw []byte
	if p, ok := s.scratch.Get().(*[]byte); ok {
		raw = *p
	}
	raw, ticks, err := s.ReadRawChunk(idx, raw)
	if err != nil {
		return ChunkFetch{}, err
	}
	pts, err := DecodePoints(raw, dst)
	s.scratch.Put(&raw)
	if err != nil {
		return ChunkFetch{}, err
	}
	return ChunkFetch{Pts: pts, Ticks: ticks}, nil
}

// Close releases the backing file handle when the source owns one.
func (s *IndexedChunkSource) Close() error {
	if s.closer != nil {
		err := s.closer.Close()
		s.closer = nil
		return err
	}
	return nil
}

// sequentialSource adapts a forward-only ChunkReader to the random-access
// ChunkSource API. Chunks can only be served in stream order, so
// out-of-order concurrent fetches (the prefetcher's) queue on a condition
// variable until the stream reaches their index — concurrency degrades to
// a pipeline, which is exactly what a one-pass reader can offer.
type sequentialSource struct {
	mu         sync.Mutex
	cond       sync.Cond
	cr         *ChunkReader
	totalTicks int
	next       int
	err        error
}

// NewSequentialSource wraps a positioned ChunkReader (fresh from
// NewChunkReader) as a ChunkSource over totalTicks ticks. The LBTC header
// carries no total tick count, so the caller supplies it (see CountTicks).
// The returned source does not own the reader's underlying stream.
func NewSequentialSource(cr *ChunkReader, totalTicks int) ChunkSource {
	if totalTicks < 0 {
		totalTicks = 0
	}
	s := &sequentialSource{cr: cr, totalTicks: totalTicks}
	s.cond.L = &s.mu
	return s
}

func (s *sequentialSource) DT() float64      { return s.cr.DT() }
func (s *sequentialSource) NumVehicles() int { return s.cr.NumVehicles() }
func (s *sequentialSource) ChunkTicks() int  { return s.cr.ChunkTicks() }
func (s *sequentialSource) NumTicks() int    { return s.totalTicks }

// ReadChunk serves chunk idx once the stream reaches it. A decode failure
// is sticky: it wakes every waiter and fails all later reads, matching the
// window's poisoned-stream semantics.
func (s *sequentialSource) ReadChunk(idx int, dst []geom.Point) (ChunkFetch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.err == nil && s.next < idx {
		s.cond.Wait()
	}
	if s.err != nil {
		return ChunkFetch{}, s.err
	}
	if idx < s.next {
		return ChunkFetch{}, fmt.Errorf("trace: sequential source cannot reread chunk %d (stream at chunk %d)", idx, s.next)
	}
	pts, ticks, err := s.cr.Next()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("stream ended %d chunks early",
				NumChunks(s.totalTicks, s.cr.ChunkTicks())-idx)
		}
		s.err = err
		s.cond.Broadcast()
		return ChunkFetch{}, err
	}
	s.next++
	if cap(dst) < len(pts) {
		dst = make([]geom.Point, len(pts))
	}
	dst = dst[:len(pts)]
	copy(dst, pts)
	s.cond.Broadcast()
	return ChunkFetch{Pts: dst, Ticks: ticks}, nil
}

// Close implements ChunkSource; the reader's underlying stream is owned by
// whoever opened it.
func (s *sequentialSource) Close() error { return nil }
