package trace

import "lbchat/internal/geom"

// Source is the engine-facing mobility-trace API. It abstracts over the
// resident columnar *Trace and the bounded sliding *Window so the engine,
// the experiment harness, and the CLIs never depend on how much of the
// trace is in memory.
//
// Window contract: before reading around time t, the consumer calls
// Advance(tick) with tick = the cursor's tick index, monotonically
// non-decreasing. After Advance(k), lookups are guaranteed only for times
// inside the retained span around tick k (for a resident Trace that span is
// the whole trace; for a Window it is [k−behind, k+ahead], sized via
// Reserve). Reading outside the span is a programming error and panics with
// *WindowViolation rather than silently loading the trace resident.
//
// All implementations must produce bit-identical results for in-window
// queries: same clamping, same iteration order, same float operations.
type Source interface {
	// DT returns the tick interval in seconds.
	DT() float64
	// NumTicks returns the total tick count of the underlying trace
	// (not the retained window).
	NumTicks() int
	// NumVehicles returns the vehicle count (0 for an empty trace).
	NumVehicles() int
	// Duration returns the covered time span in seconds.
	Duration() float64

	// Advance moves the window cursor to the given tick, loading and
	// evicting chunks as needed. Ticks outside [0, NumTicks) are clamped.
	// A failed load (e.g. a corrupt chunk) is returned annotated with the
	// chunk index and first tick, and poisons the source.
	Advance(tick int) error

	// Row returns every vehicle's position at the given tick as one
	// contiguous slice, valid until the next Advance. The tick must be
	// inside the retained window.
	Row(tick int) []geom.Point
	// RowAt is Row addressed by time (clamped, snapped to a tick).
	RowAt(t float64) []geom.Point
	// At returns the position of vehicle v at time t (clamped, snapped).
	At(v int, t float64) geom.Point
	// Distance returns the distance between vehicles a and b at time t.
	Distance(a, b int, t float64) float64
	// Neighbors returns the vehicles within commRange of v at time t.
	Neighbors(v int, t float64, commRange float64) []int
	// ContactDuration estimates how long a and b remain within commRange
	// from time t, capped at horizon seconds. It reads up to horizon
	// seconds ahead of t, which bounds the window span a consumer must
	// Reserve.
	ContactDuration(a, b int, t, commRange, horizon float64) float64

	// Validate performs structural sanity checks.
	Validate() error
}

// Windowed is the capability interface of bounded sources: consumers
// widen the retained span to their actual lookahead before the first
// Advance, and may observe chunk traffic through a side channel. Reserve
// only ever grows the span — the engine reserves ContactHorizon+TimeBudget
// ahead, and a caller with deeper lookahead can reserve more.
type Windowed interface {
	Source
	// Reserve widens the retained span to at least behind seconds before
	// and ahead seconds after the cursor. Non-positive arguments leave the
	// corresponding side unchanged.
	Reserve(behind, ahead float64)
	// SetChunkObserver installs a callback invoked on every chunk load,
	// evict, and prefetch issue, always from the goroutine driving
	// Advance.
	SetChunkObserver(fn func(ChunkOp))
}

// Compile-time conformance: the resident trace and the sliding window are
// the two Source implementations.
var (
	_ Source   = (*Trace)(nil)
	_ Windowed = (*Window)(nil)
)

// sourceNeighbors and sourceContactDuration are the shared derived-query
// implementations. Trace and Window both delegate here so the float
// operations and iteration order are literally the same code — the A/B
// byte-identical telemetry guarantee rests on that.

func sourceNeighbors(s Source, v int, t, commRange float64) []int {
	var out []int
	for o := 0; o < s.NumVehicles(); o++ {
		if o == v {
			continue
		}
		if s.Distance(v, o, t) <= commRange {
			out = append(out, o)
		}
	}
	return out
}

func sourceContactDuration(s Source, a, b int, t, commRange, horizon float64) float64 {
	if s.Distance(a, b, t) > commRange {
		return 0
	}
	end := t + horizon
	if traceEnd := s.Duration(); end > traceEnd {
		end = traceEnd
	}
	for u, dt := t, s.DT(); u < end; u += dt {
		if s.Distance(a, b, u) > commRange {
			return u - t
		}
	}
	return end - t
}
