package trace

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lbchat/internal/geom"
)

// encodeTrace returns tr as LBTC stream bytes.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIndexedSourceMatchesResident reads every chunk of an indexed source —
// out of order and concurrently — and checks each decoded position against
// the resident trace.
func TestIndexedSourceMatchesResident(t *testing.T) {
	const (
		vehicles   = 3
		ticks      = 90
		chunkTicks = 8
	)
	tr := syntheticTrace(0.5, vehicles, ticks, chunkTicks)
	src, err := NewBytesSource(encodeTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.DT() != 0.5 || src.NumVehicles() != vehicles || src.ChunkTicks() != chunkTicks || src.NumTicks() != ticks {
		t.Fatalf("source shape dt=%g vehicles=%d chunkTicks=%d ticks=%d",
			src.DT(), src.NumVehicles(), src.ChunkTicks(), src.NumTicks())
	}
	if want := NumChunks(ticks, chunkTicks); src.NumChunks() != want {
		t.Fatalf("NumChunks = %d, want %d", src.NumChunks(), want)
	}
	var wg sync.WaitGroup
	for idx := src.NumChunks() - 1; idx >= 0; idx-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cf, err := src.ReadChunk(idx, nil)
			if err != nil {
				t.Errorf("ReadChunk(%d): %v", idx, err)
				return
			}
			first := idx * chunkTicks
			wantTicks := chunkTicks
			if rem := ticks - first; rem < wantTicks {
				wantTicks = rem
			}
			if cf.Ticks != wantTicks || len(cf.Pts) != wantTicks*vehicles || cf.Retries != 0 {
				t.Errorf("chunk %d: ticks=%d pts=%d retries=%d, want ticks=%d pts=%d retries=0",
					idx, cf.Ticks, len(cf.Pts), cf.Retries, wantTicks, wantTicks*vehicles)
				return
			}
			for k := 0; k < cf.Ticks; k++ {
				row := tr.Row(first + k)
				for v := 0; v < vehicles; v++ {
					if cf.Pts[k*vehicles+v] != row[v] {
						t.Errorf("chunk %d tick %d vehicle %d: %v, want %v",
							idx, first+k, v, cf.Pts[k*vehicles+v], row[v])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if _, err := src.ReadChunk(src.NumChunks(), nil); err == nil {
		t.Fatal("reading past the last chunk succeeded")
	}
}

// TestSequentialSourceConcurrent fires out-of-order concurrent reads at the
// forward-only adapter; they must pipeline back into stream order and every
// chunk must decode to the resident values.
func TestSequentialSourceConcurrent(t *testing.T) {
	const (
		vehicles   = 2
		ticks      = 60
		chunkTicks = 8
	)
	tr := syntheticTrace(0.5, vehicles, ticks, chunkTicks)
	cr, err := NewChunkReader(bytes.NewReader(encodeTrace(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	src := NewSequentialSource(cr, ticks)
	n := NumChunks(ticks, chunkTicks)
	var wg sync.WaitGroup
	for idx := n - 1; idx >= 0; idx-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cf, err := src.ReadChunk(idx, nil)
			if err != nil {
				t.Errorf("ReadChunk(%d): %v", idx, err)
				return
			}
			first := idx * chunkTicks
			for k := 0; k < cf.Ticks; k++ {
				row := tr.Row(first + k)
				for v := 0; v < vehicles; v++ {
					if cf.Pts[k*vehicles+v] != row[v] {
						t.Errorf("chunk %d tick %d vehicle %d differs", idx, first+k, v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestSequentialSourceEndsEarly pins the early-EOF error when the claimed
// tick total outruns the actual stream.
func TestSequentialSourceEndsEarly(t *testing.T) {
	const chunkTicks = 8
	tr := syntheticTrace(0.5, 2, 16, chunkTicks)
	cr, err := NewChunkReader(bytes.NewReader(encodeTrace(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	src := NewSequentialSource(cr, 24) // one chunk more than the stream holds
	for idx := 0; idx < 2; idx++ {
		if _, err := src.ReadChunk(idx, nil); err != nil {
			t.Fatalf("ReadChunk(%d): %v", idx, err)
		}
	}
	_, err = src.ReadChunk(2, nil)
	if err == nil || !strings.Contains(err.Error(), "ended 1 chunks early") {
		t.Fatalf("reading past the stream end: %v", err)
	}
	// The failure is sticky.
	if _, err2 := src.ReadChunk(3, nil); err2 == nil {
		t.Fatal("sticky error did not surface on a later read")
	}
}

// delaySource injects a fixed latency into every fetch — enough for the
// adaptive depth to see expensive chunks without a real network.
type delaySource struct {
	ChunkSource
	delay time.Duration
}

func (d *delaySource) ReadChunk(idx int, dst []geom.Point) (ChunkFetch, error) {
	time.Sleep(d.delay)
	return d.ChunkSource.ReadChunk(idx, dst)
}

// TestWindowAdaptiveOverDelayedSource sweeps a prefetching window over a
// high-latency source: values must stay identical to the resident trace,
// and the adaptive depth must have grown past the fixed one-chunk
// readahead.
func TestWindowAdaptiveOverDelayedSource(t *testing.T) {
	const (
		vehicles   = 2
		ticks      = 96
		chunkTicks = 8
	)
	tr := syntheticTrace(0.5, vehicles, ticks, chunkTicks)
	inner, err := NewBytesSource(encodeTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	src := &delaySource{ChunkSource: inner, delay: 2 * time.Millisecond}
	w := NewWindowSource(src, WindowConfig{Behind: 2, Ahead: 5, Prefetch: true, PrefetchBudget: 4})
	defer w.Close()
	for cursor := 0; cursor < ticks; cursor++ {
		if err := w.Advance(cursor); err != nil {
			t.Fatalf("Advance(%d): %v", cursor, err)
		}
		now := float64(cursor) * 0.5
		for v := 0; v < vehicles; v++ {
			if got, want := w.At(v, now), tr.At(v, now); got != want {
				t.Fatalf("cursor %d vehicle %d: %v, want %v", cursor, v, got, want)
			}
		}
	}
	if d := w.PrefetchDepth(); d <= 1 {
		t.Errorf("adaptive depth stayed at %d over a 2ms-latency source", d)
	}
	if loads, _, _ := w.Stats(); loads != NumChunks(ticks, chunkTicks) {
		t.Errorf("loads = %d, want %d", loads, NumChunks(ticks, chunkTicks))
	}
	if _, waitNs := w.FetchStats(); waitNs <= 0 {
		t.Errorf("waitNs = %d; the first synchronous load alone should have blocked", waitNs)
	}
}

// TestWindowPrefetchBudgetPinsDepth pins that PrefetchBudget=1 restores the
// fixed one-chunk readahead regardless of observed latency.
func TestWindowPrefetchBudgetPinsDepth(t *testing.T) {
	tr := syntheticTrace(0.5, 2, 64, 8)
	inner, err := NewBytesSource(encodeTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	src := &delaySource{ChunkSource: inner, delay: time.Millisecond}
	w := NewWindowSource(src, WindowConfig{Behind: 2, Ahead: 5, Prefetch: true, PrefetchBudget: 1})
	defer w.Close()
	maxDepth := 0
	w.SetChunkObserver(func(op ChunkOp) {
		if op.Depth > maxDepth {
			maxDepth = op.Depth
		}
	})
	for cursor := 0; cursor < 64; cursor++ {
		if err := w.Advance(cursor); err != nil {
			t.Fatalf("Advance(%d): %v", cursor, err)
		}
	}
	if maxDepth != 1 {
		t.Fatalf("depth reached %d under PrefetchBudget=1", maxDepth)
	}
}

// retrySource reports a fixed per-fetch retry count, standing in for a
// flaky transport that recovered every time.
type retrySource struct {
	ChunkSource
	retries int
}

func (r *retrySource) ReadChunk(idx int, dst []geom.Point) (ChunkFetch, error) {
	cf, err := r.ChunkSource.ReadChunk(idx, dst)
	cf.Retries = r.retries
	return cf, err
}

// TestWindowSurfacesFetchRetries checks that per-fetch retry counts
// aggregate into FetchStats and ride each load's ChunkOp.
func TestWindowSurfacesFetchRetries(t *testing.T) {
	const ticks, chunkTicks = 48, 8
	tr := syntheticTrace(0.5, 2, ticks, chunkTicks)
	inner, err := NewBytesSource(encodeTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindowSource(&retrySource{ChunkSource: inner, retries: 2}, WindowConfig{Behind: 2, Ahead: 5})
	defer w.Close()
	var opRetries int
	w.SetChunkObserver(func(op ChunkOp) {
		if op.Kind == OpLoad {
			opRetries += op.Retries
		}
	})
	for cursor := 0; cursor < ticks; cursor++ {
		if err := w.Advance(cursor); err != nil {
			t.Fatal(err)
		}
	}
	wantRetries := 2 * NumChunks(ticks, chunkTicks)
	if retries, _ := w.FetchStats(); retries != wantRetries {
		t.Errorf("FetchStats retries = %d, want %d", retries, wantRetries)
	}
	if opRetries != wantRetries {
		t.Errorf("summed ChunkOp retries = %d, want %d", opRetries, wantRetries)
	}
}

// failSource fails every fetch of one chunk index.
type failSource struct {
	ChunkSource
	failIdx int
}

func (f *failSource) ReadChunk(idx int, dst []geom.Point) (ChunkFetch, error) {
	if idx == f.failIdx {
		return ChunkFetch{}, fmt.Errorf("injected fetch failure")
	}
	return f.ChunkSource.ReadChunk(idx, dst)
}

// TestWindowSourceErrorPoisons pins the failure contract for source-level
// fetch errors (a chunk server with exhausted retries): Advance returns a
// position-annotated *ChunkError, the error is sticky, and lookups panic.
func TestWindowSourceErrorPoisons(t *testing.T) {
	const chunkTicks = 8
	tr := syntheticTrace(0.5, 2, 64, chunkTicks)
	inner, err := NewBytesSource(encodeTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindowSource(&failSource{ChunkSource: inner, failIdx: 3}, WindowConfig{Behind: 2, Ahead: 2})
	defer w.Close()
	var advErr error
	for cursor := 0; cursor < 64; cursor++ {
		if advErr = w.Advance(cursor); advErr != nil {
			break
		}
	}
	var ce *ChunkError
	if !errors.As(advErr, &ce) {
		t.Fatalf("Advance error %v is not a *ChunkError", advErr)
	}
	if ce.Chunk != 3 || ce.FirstTick != 3*chunkTicks {
		t.Fatalf("ChunkError at chunk %d first tick %d, want chunk 3 first tick %d", ce.Chunk, ce.FirstTick, 3*chunkTicks)
	}
	if err := w.Advance(63); err == nil {
		t.Fatal("poisoned window accepted another Advance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lookup on a poisoned window did not panic")
		}
	}()
	w.Row(0)
}

// TestDecodePointsBadLength pins the partial-point error.
func TestDecodePointsBadLength(t *testing.T) {
	if _, err := DecodePoints(make([]byte, 24), nil); err == nil {
		t.Fatal("24-byte body decoded")
	}
	pts, err := DecodePoints(make([]byte, 32), nil)
	if err != nil || len(pts) != 2 {
		t.Fatalf("32-byte body: %d points, err %v", len(pts), err)
	}
}
