GO ?= go

.PHONY: build vet test race bench telemetry-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator runs parallel by default; the race detector is part of
# tier-1 verification for the concurrent paths (engine ticks, experiment
# harness fan-out, chunked matmul).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# End-to-end check of the telemetry pipeline: a tiny sim writes its event
# stream as JSONL, and telemetry-lint fails unless the file is non-empty
# and every line decodes against the event schema.
telemetry-smoke:
	$(eval TMPDIR_SMOKE := $(shell mktemp -d))
	$(GO) run ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-telemetry-out $(TMPDIR_SMOKE)/events.jsonl > /dev/null
	$(GO) run ./cmd/telemetry-lint $(TMPDIR_SMOKE)/events.jsonl
	rm -rf $(TMPDIR_SMOKE)

ci: build vet test race telemetry-smoke
