GO ?= go

.PHONY: build vet test race bench telemetry-smoke doccheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator runs parallel by default; the race detector is part of
# tier-1 verification for the concurrent paths (engine ticks, experiment
# harness fan-out, chunked matmul).
# The experiments package runs several full co-simulations; under the race
# detector that exceeds go test's default 10-minute per-package budget
# (~19 min on a fast box, longer on one core).
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# End-to-end check of the telemetry pipeline: a tiny sim writes its event
# stream as JSONL, and telemetry-lint fails unless the file is non-empty
# and every line decodes against the event schema.
telemetry-smoke:
	$(eval TMPDIR_SMOKE := $(shell mktemp -d))
	$(GO) run ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-telemetry-out $(TMPDIR_SMOKE)/events.jsonl > /dev/null
	$(GO) run ./cmd/telemetry-lint $(TMPDIR_SMOKE)/events.jsonl
	rm -rf $(TMPDIR_SMOKE)

# Every internal package must carry its godoc in a dedicated doc.go opening
# with the canonical "// Package <name>" sentence.
doccheck:
	@fail=0; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		if [ ! -f "$$d/doc.go" ]; then \
			echo "doccheck: $$d is missing doc.go"; fail=1; \
		elif ! grep -q "^// Package $$pkg " "$$d/doc.go"; then \
			echo "doccheck: $$d/doc.go lacks a '// Package $$pkg' comment"; fail=1; \
		fi; \
	done; exit $$fail

ci: build vet doccheck test race telemetry-smoke
