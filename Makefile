GO ?= go

# staticcheck is pinned so lint results are reproducible; bump deliberately.
STATICCHECK_VERSION ?= 2025.1

# Hot-path benchmark tracking: make bench-json records the spatial/shard
# scan fast paths, the coreset maintenance hot loops, and their baselines
# into $(BENCH_JSON), and appends the same results as one labelled JSONL
# line to $(BENCH_HISTORY) so trends survive across runs;
# cmd/bench-compare diffs a candidate file against the committed
# $(BENCH_BASELINE) and fails on >15% ns/op regressions for the hot paths,
# then prints the per-benchmark trend across the history file.
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_JSON ?= $(BENCH_BASELINE)
BENCH_HISTORY ?= BENCH_HISTORY.jsonl
BENCH_LABEL ?= local
BENCH_FILTER := BenchmarkCandidatePairs|BenchmarkWorldTick|BenchmarkBEV|BenchmarkShardScan|BenchmarkEnsureCoreset|BenchmarkAbsorbCoreset|BenchmarkWindowAdvance|BenchmarkWindowRowAt|BenchmarkTrainTick
BENCH_HOT := CandidatePairs,WorldTick,ShardScan,EnsureCoreset,AbsorbCoreset,WindowRowAt,TrainTick
BENCH_PKGS := ./internal/core/ ./internal/world/ ./internal/shard/ ./internal/trace/

.PHONY: build vet lint test race bench bench-json bench-compare bench-pprof scale-smoke telemetry-smoke stream-smoke remote-stream-smoke coreset-smoke sched-smoke doccheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fetching the pinned staticcheck needs the module proxy; offline boxes
# (this repo carries no vendored deps) degrade to a warning so make ci
# stays runnable anywhere, while CI — which has network — lints for real.
lint:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	else \
		echo "lint: staticcheck@$(STATICCHECK_VERSION) unavailable (no module proxy access?); skipping"; \
	fi

test:
	$(GO) test ./...

# The simulator runs parallel by default; the race detector is part of
# tier-1 verification for the concurrent paths (engine ticks, experiment
# harness fan-out, chunked matmul).
# The experiments package runs several full co-simulations; under the race
# detector that exceeds go test's default 10-minute per-package budget
# (~19 min on a fast box, longer on one core).
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_FILTER)' -benchmem \
		$(BENCH_PKGS) | $(GO) run ./cmd/bench-json -o $(BENCH_JSON) \
		-append-history $(BENCH_HISTORY) -label $(BENCH_LABEL)

bench-compare:
	$(GO) run ./cmd/bench-compare -hot '$(BENCH_HOT)' -history $(BENCH_HISTORY) \
		$(BENCH_BASELINE) $(BENCH_JSON)

# CPU profiles of the scan hot paths, for flame-graph inspection and CI
# artifacts. Profiles land in bench-profiles/ next to their test binaries
# (go test needs -o when profiling, so the binary is kept alongside).
bench-pprof:
	mkdir -p bench-profiles
	$(GO) test -run '^$$' -bench 'BenchmarkShardScan' -benchmem \
		-cpuprofile bench-profiles/shard.cpu.pprof -o bench-profiles/shard.test ./internal/shard/
	$(GO) test -run '^$$' -bench 'BenchmarkCandidatePairs' -benchmem \
		-cpuprofile bench-profiles/core.cpu.pprof -o bench-profiles/core.test ./internal/core/

# A 2048-vehicle sharded scan under the race detector: exercises the
# halo-exchange and per-shard scratch paths at scale without datasets.
scale-smoke:
	$(GO) run -race ./cmd/lbchat-bench -exp fleetscan -vehicles 2048 -duration 10 -shards 4

# End-to-end check of the telemetry pipeline: a tiny sim writes its event
# stream as JSONL plus its aggregated summary CSV, and telemetry-lint fails
# unless the stream is non-empty, every line decodes against the event
# schema, and every summary row names a canonical metric.
telemetry-smoke:
	$(eval TMPDIR_SMOKE := $(shell mktemp -d))
	$(GO) run ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-telemetry-out $(TMPDIR_SMOKE)/events.jsonl \
		-summary-out $(TMPDIR_SMOKE)/summary.csv > /dev/null
	$(GO) run ./cmd/telemetry-lint -summary $(TMPDIR_SMOKE)/summary.csv \
		$(TMPDIR_SMOKE)/events.jsonl
	rm -rf $(TMPDIR_SMOKE)

# A/B check of the streaming trace engine under the race detector: the same
# small co-simulation runs once resident and once through the bounded
# sliding-window source (-stream-trace), and the two telemetry event streams
# must be byte-identical — chunk traffic flows through a side channel, never
# the event stream.
stream-smoke:
	$(eval TMPDIR_STREAM := $(shell mktemp -d))
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-telemetry-out $(TMPDIR_STREAM)/resident.jsonl > /dev/null
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-stream-trace -telemetry-out $(TMPDIR_STREAM)/streamed.jsonl > /dev/null
	cmp $(TMPDIR_STREAM)/resident.jsonl $(TMPDIR_STREAM)/streamed.jsonl
	rm -rf $(TMPDIR_STREAM)

# End-to-end check of the remote trace path: a recorded LBTC trace is
# served by cmd/trace-serve on a loopback port, and the same co-simulation
# runs once from the file (-trace-file) and once over HTTP (-trace-url).
# The telemetry event streams must be byte-identical — remote paging
# changes where chunks come from, never what the engine computes — and the
# remote run's summary CSV must lint clean against the canonical metric
# registry, which covers the trace.chunk_* fetch-pipeline counters only a
# remote run emits.
remote-stream-smoke:
	$(eval TMPDIR_REMOTE := $(shell mktemp -d))
	$(GO) build -o $(TMPDIR_REMOTE)/trace-serve ./cmd/trace-serve
	$(GO) run ./cmd/worldgen -vehicles 4 -trace 240 \
		-trace-out $(TMPDIR_REMOTE)/trace.lbtc > /dev/null
	$(GO) run -race ./cmd/lbchat-sim -scale test -duration 120 \
		-trace-file $(TMPDIR_REMOTE)/trace.lbtc \
		-telemetry-out $(TMPDIR_REMOTE)/local.jsonl > /dev/null
	set -e; \
	$(TMPDIR_REMOTE)/trace-serve -file $(TMPDIR_REMOTE)/trace.lbtc \
		-addr 127.0.0.1:0 -addr-file $(TMPDIR_REMOTE)/addr & \
	pid=$$!; trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 100); do [ -s $(TMPDIR_REMOTE)/addr ] && break; sleep 0.1; done; \
	[ -s $(TMPDIR_REMOTE)/addr ] || { echo "trace-serve never published its address"; exit 1; }; \
	$(GO) run -race ./cmd/lbchat-sim -scale test -duration 120 \
		-trace-url http://$$(cat $(TMPDIR_REMOTE)/addr) \
		-telemetry-out $(TMPDIR_REMOTE)/remote.jsonl \
		-summary-out $(TMPDIR_REMOTE)/summary.csv > /dev/null
	cmp $(TMPDIR_REMOTE)/local.jsonl $(TMPDIR_REMOTE)/remote.jsonl
	$(GO) run ./cmd/telemetry-lint -summary $(TMPDIR_REMOTE)/summary.csv \
		$(TMPDIR_REMOTE)/remote.jsonl
	rm -rf $(TMPDIR_REMOTE)

# A/B check of the coreset refresh arms under the race detector. The two
# arms are distinct sampling processes, so the check is within-arm
# determinism: each arm's telemetry event stream must be byte-identical
# between a serial run and a parallel sharded run (leaf/merge cache stats
# flow through a side channel, never the event stream) — and the arms must
# actually differ from each other, proving -full-coreset-rebuild switches
# the refresh path.
coreset-smoke:
	$(eval TMPDIR_CORESET := $(shell mktemp -d))
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-workers 1 -telemetry-out $(TMPDIR_CORESET)/inc-serial.jsonl > /dev/null
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-workers 4 -shards 2 -telemetry-out $(TMPDIR_CORESET)/inc-parallel.jsonl > /dev/null
	cmp $(TMPDIR_CORESET)/inc-serial.jsonl $(TMPDIR_CORESET)/inc-parallel.jsonl
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-full-coreset-rebuild -workers 1 \
		-telemetry-out $(TMPDIR_CORESET)/full-serial.jsonl > /dev/null
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-full-coreset-rebuild -workers 4 -shards 2 \
		-telemetry-out $(TMPDIR_CORESET)/full-parallel.jsonl > /dev/null
	cmp $(TMPDIR_CORESET)/full-serial.jsonl $(TMPDIR_CORESET)/full-parallel.jsonl
	@if cmp -s $(TMPDIR_CORESET)/inc-serial.jsonl $(TMPDIR_CORESET)/full-serial.jsonl; then \
		echo "coreset-smoke: -full-coreset-rebuild produced an identical stream; arm flag is not wired"; \
		exit 1; \
	fi
	rm -rf $(TMPDIR_CORESET)

# A/B check of the due-time scheduler arms under the race detector. Unlike
# the coreset arms, the calendar queue and the legacy per-tick fleet scan
# must produce BYTE-IDENTICAL event streams — the wheel changes how due
# vehicles are discovered, never which vehicles are due or in what order —
# so the check is cross-arm equality, plus calendar determinism across a
# parallel sharded run (scheduler stats flow through a side channel, never
# the event stream).
sched-smoke:
	$(eval TMPDIR_SCHED := $(shell mktemp -d))
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-workers 1 -telemetry-out $(TMPDIR_SCHED)/calendar.jsonl > /dev/null
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-legacy-due-scan -workers 1 \
		-telemetry-out $(TMPDIR_SCHED)/legacy.jsonl > /dev/null
	cmp $(TMPDIR_SCHED)/calendar.jsonl $(TMPDIR_SCHED)/legacy.jsonl
	$(GO) run -race ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-workers 4 -shards 2 \
		-telemetry-out $(TMPDIR_SCHED)/calendar-parallel.jsonl > /dev/null
	cmp $(TMPDIR_SCHED)/calendar.jsonl $(TMPDIR_SCHED)/calendar-parallel.jsonl
	rm -rf $(TMPDIR_SCHED)

# Every internal package must carry its godoc in a dedicated doc.go opening
# with the canonical "// Package <name>" sentence.
doccheck:
	@fail=0; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		if [ ! -f "$$d/doc.go" ]; then \
			echo "doccheck: $$d is missing doc.go"; fail=1; \
		elif ! grep -q "^// Package $$pkg " "$$d/doc.go"; then \
			echo "doccheck: $$d/doc.go lacks a '// Package $$pkg' comment"; fail=1; \
		fi; \
	done; exit $$fail

ci: build vet doccheck lint test race telemetry-smoke stream-smoke remote-stream-smoke coreset-smoke sched-smoke
