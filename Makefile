GO ?= go

# staticcheck is pinned so lint results are reproducible; bump deliberately.
STATICCHECK_VERSION ?= 2025.1

# Hot-path benchmark tracking: make bench-json records the spatial-index
# fast paths (and their brute-force baselines) into $(BENCH_JSON);
# cmd/bench-compare diffs a candidate file against the committed
# BENCH_PR4.json and fails on >15% ns/op regressions for the hot paths.
BENCH_JSON ?= BENCH_PR4.json
BENCH_FILTER := BenchmarkCandidatePairs|BenchmarkWorldTick|BenchmarkBEV

.PHONY: build vet lint test race bench bench-json bench-compare telemetry-smoke doccheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fetching the pinned staticcheck needs the module proxy; offline boxes
# (this repo carries no vendored deps) degrade to a warning so make ci
# stays runnable anywhere, while CI — which has network — lints for real.
lint:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	else \
		echo "lint: staticcheck@$(STATICCHECK_VERSION) unavailable (no module proxy access?); skipping"; \
	fi

test:
	$(GO) test ./...

# The simulator runs parallel by default; the race detector is part of
# tier-1 verification for the concurrent paths (engine ticks, experiment
# harness fan-out, chunked matmul).
# The experiments package runs several full co-simulations; under the race
# detector that exceeds go test's default 10-minute per-package budget
# (~19 min on a fast box, longer on one core).
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_FILTER)' -benchmem \
		./internal/core/ ./internal/world/ | $(GO) run ./cmd/bench-json -o $(BENCH_JSON)

bench-compare:
	$(GO) run ./cmd/bench-compare -hot 'CandidatePairs,WorldTick' BENCH_PR4.json $(BENCH_JSON)

# End-to-end check of the telemetry pipeline: a tiny sim writes its event
# stream as JSONL, and telemetry-lint fails unless the file is non-empty
# and every line decodes against the event schema.
telemetry-smoke:
	$(eval TMPDIR_SMOKE := $(shell mktemp -d))
	$(GO) run ./cmd/lbchat-sim -scale test -vehicles 4 -duration 120 \
		-telemetry-out $(TMPDIR_SMOKE)/events.jsonl > /dev/null
	$(GO) run ./cmd/telemetry-lint $(TMPDIR_SMOKE)/events.jsonl
	rm -rf $(TMPDIR_SMOKE)

# Every internal package must carry its godoc in a dedicated doc.go opening
# with the canonical "// Package <name>" sentence.
doccheck:
	@fail=0; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		if [ ! -f "$$d/doc.go" ]; then \
			echo "doccheck: $$d is missing doc.go"; fail=1; \
		elif ! grep -q "^// Package $$pkg " "$$d/doc.go"; then \
			echo "doccheck: $$d/doc.go lacks a '// Package $$pkg' comment"; fail=1; \
		fi; \
	done; exit $$fail

ci: build vet doccheck lint test race telemetry-smoke
