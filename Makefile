GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator runs parallel by default; the race detector is part of
# tier-1 verification for the concurrent paths (engine ticks, experiment
# harness fan-out, chunked matmul).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

ci: build vet test race
