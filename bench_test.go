// Package lbchat's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§IV). Each benchmark runs one experiment at
// BenchScale-derived sizing and reports the headline quantities as custom
// metrics alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// The shared environment (map, datasets, mobility trace, driving routes) is
// built once and reused; every benchmark iteration re-runs the protocol
// training and/or evaluation from pristine state. For paper-scale runs (32
// vehicles) use cmd/lbchat-bench -scale full instead.
package lbchat_test

import (
	"math"
	"sync"
	"testing"

	"lbchat/internal/core"
	"lbchat/internal/eval"
	"lbchat/internal/experiments"
	"lbchat/internal/simrand"
)

// benchScale trims the default bench scale so the full suite (10 table and
// figure regenerations, each training multiple fleets) completes on a single
// CPU core in reasonable time. Scale up via cmd/lbchat-bench. Workers stays
// at the auto default, so on a multi-core host the harnesses fan their
// independent protocol runs, vehicle ticks, and evaluation rollouts across
// cores — with bit-identical results (see BenchmarkLbChatWorkers*).
func benchScale() experiments.Scale {
	s := experiments.BenchScale()
	s.Vehicles = 6
	s.CollectTicks = 900
	s.TraceTicks = 9600
	s.TrainDuration = 1500
	s.ProbeFrames = 64
	s.EvalTrials = 8
	s.EvalFleetSample = 2
	s.RoutesPerCondition = 5
	return s
}

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func getBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.BuildEnv(benchScale())
	})
	if benchEnvErr != nil {
		b.Fatalf("building environment: %v", benchEnvErr)
	}
	return benchEnv
}

// reportRates attaches per-condition success rates as benchmark metrics.
func reportRates(b *testing.B, prefix string, rates map[eval.Condition]float64) {
	b.Helper()
	for _, cond := range eval.Conditions {
		if r, ok := rates[cond]; ok && !math.IsNaN(r) {
			b.ReportMetric(r, prefix+metricName(cond)+"_%")
		}
	}
}

func metricName(c eval.Condition) string {
	switch c {
	case eval.CondStraight:
		return "straight"
	case eval.CondOneTurn:
		return "one_turn"
	case eval.CondNaviEmpty:
		return "navi_empty"
	case eval.CondNaviNormal:
		return "navi_normal"
	case eval.CondNaviDense:
		return "navi_dense"
	default:
		return "unknown"
	}
}

// BenchmarkFig2a regenerates Figure 2(a): training-loss curves for all five
// protocols without wireless loss. Reported metrics are each protocol's
// final probe loss (×1000 for readability).
func BenchmarkFig2a(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		runs, err := env.Fig2(true)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			b.ReportMetric(1000*r.Curve.Final(), string(r.Name)+"_mloss")
		}
	}
}

// BenchmarkFig2b regenerates Figure 2(b): the same lineup under the
// distance-based wireless loss model.
func BenchmarkFig2b(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		runs, err := env.Fig2(false)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			b.ReportMetric(1000*r.Curve.Final(), string(r.Name)+"_mloss")
		}
	}
}

// BenchmarkReceiveRates regenerates the §IV-C successful model-receiving
// rate comparison (paper: LbChat 87% vs 51–60% for the benchmarks).
func BenchmarkReceiveRates(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		runs, err := env.Fig2(false)
		if err != nil {
			b.Fatal(err)
		}
		for name, rate := range experiments.ReceiveRates(runs) {
			if !math.IsNaN(rate) {
				b.ReportMetric(rate, string(name)+"_recv_%")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table II: driving success rate per protocol
// without wireless loss. LbChat's per-condition rates are reported.
func BenchmarkTable2(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		runs, err := env.Fig2(true)
		if err != nil {
			b.Fatal(err)
		}
		rates := env.SuccessRates(runs)
		tbl := env.SuccessTable("Table II", experiments.BenchmarkProtocols, rates)
		_ = tbl
		reportRates(b, "lbchat_", rates[experiments.ProtoLbChat])
	}
}

// BenchmarkTable3 regenerates Table III: driving success rates under
// wireless loss.
func BenchmarkTable3(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		runs, err := env.Fig2(false)
		if err != nil {
			b.Fatal(err)
		}
		rates := env.SuccessRates(runs)
		reportRates(b, "lbchat_", rates[experiments.ProtoLbChat])
	}
}

// BenchmarkTable4 regenerates Table IV: the coreset-size sweep (10× and
// 1/10 the default |C|, both wireless regimes).
func BenchmarkTable4(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.Table4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Value("Navi. (Dense)", "1500 (W/O)"), "dense_1500_wo_%")
		b.ReportMetric(tbl.Value("Navi. (Dense)", "15 (W/O)"), "dense_15_wo_%")
	}
}

// BenchmarkTable5 regenerates Table V: the equal-compression ablation
// (Eq. (7) masked).
func BenchmarkTable5(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.Table5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Value("Navi. (Dense)", "W/O wireless loss"), "dense_wo_%")
		b.ReportMetric(tbl.Value("Navi. (Dense)", "W wireless loss"), "dense_w_%")
	}
}

// BenchmarkTable6 regenerates Table VI: the average-aggregation ablation
// (Eq. (8) masked).
func BenchmarkTable6(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.Table6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Value("Navi. (Dense)", "W/O wireless loss"), "dense_wo_%")
		b.ReportMetric(tbl.Value("Navi. (Dense)", "W wireless loss"), "dense_w_%")
	}
}

// BenchmarkTable7 regenerates Table VII: SCO, sharing coresets only.
func BenchmarkTable7(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.Table7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Value("Navi. (Dense)", "W/O wireless loss"), "dense_wo_%")
		b.ReportMetric(tbl.Value("Navi. (Dense)", "W wireless loss"), "dense_w_%")
	}
}

// BenchmarkFig3 regenerates Figure 3: LbChat vs SCO loss curves and the
// convergence-time ratio (paper: SCO needs 1.5–1.8× longer).
func BenchmarkFig3(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		lb, sco, ratio, err := env.Fig3(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1000*lb.Curve.Final(), "lbchat_mloss")
		b.ReportMetric(1000*sco.Curve.Final(), "sco_mloss")
		if !math.IsNaN(ratio) {
			b.ReportMetric(ratio, "sco_slowdown_x")
		}
	}
}

// BenchmarkTrainStep measures one local training step (the inner loop of
// every vehicle's Algorithm 2 line 3).
func BenchmarkTrainStep(b *testing.B) {
	env := getBenchEnv(b)
	ds := env.FreshDatasets()[0]
	run, err := env.RunProtocol(experiments.ProtoLbChat, true, func(c *core.Config) {})
	if err != nil {
		b.Fatal(err)
	}
	pol := run.Fleet[0]
	rng := simrand.New(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.TrainStep(ds.SampleBatch(16, rng))
	}
}

// benchmarkLbChatRun times one LbChat training run (wireless loss) at a
// fixed worker count; comparing the Workers1 and WorkersAuto variants
// measures the parallel execution layer's speedup on the host (≈1× on a
// single core, rising with cores since the five-protocol harnesses,
// per-vehicle ticks, and eval rollouts all fan out).
func benchmarkLbChatRun(b *testing.B, workers int) {
	env := getBenchEnv(b)
	e := *env
	e.Scale.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := e.RunProtocol(experiments.ProtoLbChat, false, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1000*run.Curve.Final(), "mloss")
	}
}

// BenchmarkLbChatWorkers1 is the serial baseline for the speedup comparison.
func BenchmarkLbChatWorkers1(b *testing.B) { benchmarkLbChatRun(b, 1) }

// BenchmarkLbChatWorkersAuto runs with one worker per available CPU.
func BenchmarkLbChatWorkersAuto(b *testing.B) { benchmarkLbChatRun(b, 0) }

// BenchmarkRouteSharingAblation isolates the Eq. (5) prioritization: LbChat
// with and without route-sharing neighbor selection under wireless loss.
func BenchmarkRouteSharingAblation(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.RouteSharingStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Value("model receive rate (%)", "LbChat"), "with_prio_recv_%")
		b.ReportMetric(tbl.Value("model receive rate (%)", "LbChat-NoPrio"), "no_prio_recv_%")
	}
}

// BenchmarkCoresetMethods compares the §V coreset-construction alternatives
// inside full LbChat runs.
func BenchmarkCoresetMethods(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.CoresetMethodStudy(true)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []string{"layered", "sensitivity", "clustering", "uniform"} {
			b.ReportMetric(tbl.Value("final probe loss (x1000)", m), m+"_mloss")
		}
	}
}

// BenchmarkAdaptiveCoreset measures the future-work adaptive coreset sizing
// against the fixed default budget.
func BenchmarkAdaptiveCoreset(b *testing.B) {
	env := getBenchEnv(b)
	for i := 0; i < b.N; i++ {
		tbl, err := env.AdaptiveCoresetStudy(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.Value("final probe loss (x1000)", "fixed |C|"), "fixed_mloss")
		b.ReportMetric(tbl.Value("final probe loss (x1000)", "adaptive |C|"), "adaptive_mloss")
	}
}
