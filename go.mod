module lbchat

go 1.22
