// Compression trade-off: the loss-vs-ψ curve behind Eq. (7).
//
// The example trains a driving model, sparsifies its delta from the shared
// initialization at a sweep of compression levels ψ, and measures the loss
// of each reconstruction on the model's own coreset — the sampled pairs a
// vehicle would exchange. It then fits the Akima φ curve through the
// samples and solves Eq. (7) for several peer-value scenarios, showing how
// the optimizer shifts bandwidth toward the more valuable direction.
//
//	go run ./examples/compression-tradeoff
package main

import (
	"fmt"
	"os"

	"lbchat/internal/bev"
	"lbchat/internal/compress"
	"lbchat/internal/coreset"
	"lbchat/internal/model"
	"lbchat/internal/optimize"
	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "compression-tradeoff: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		return err
	}
	rng := simrand.New(31)
	w, err := world.New(m, world.SpawnConfig{Experts: 1, BackgroundCars: 30, Pedestrians: 120}, rng)
	if err != nil {
		return err
	}
	mcfg := model.DefaultConfig()
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	fmt.Println("Collecting data and training the model...")
	data := world.CollectDataset(w, ras, mcfg.NumWaypoints, 1000, 0.5)[0]

	pol, err := model.New(mcfg, 1)
	if err != nil {
		return err
	}
	initFlat := pol.Flat()
	trng := rng.Derive("train")
	for step := 0; step < 800; step++ {
		pol.TrainStep(data.SampleBatch(16, trng))
	}

	losses := pol.PerSampleLosses(data.Items())
	cs, err := coreset.Build(data, losses, 150, rng.Derive("cs"))
	if err != nil {
		return err
	}
	baseLoss := pol.Loss(cs.Items())
	fmt.Printf("Uncompressed model loss on its coreset: %.5f\n\n", baseLoss)

	// Sweep ψ: compress the delta from the shared init, reconstruct,
	// evaluate.
	flat := pol.Flat()
	delta := make([]float64, len(flat))
	for i := range flat {
		delta[i] = flat[i] - initFlat[i]
	}
	scratch := pol.Clone()
	psis := []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	lossAt := make([]float64, len(psis))
	fmt.Printf("%8s %14s %16s %12s\n", "ψ", "kept coords", "payload (MB)", "loss on C")
	for i, psi := range psis {
		k := int(psi * float64(len(delta)))
		sp := compress.TopK(delta, k)
		rec := append([]float64(nil), initFlat...)
		for j, idx := range sp.Indices {
			rec[idx] += sp.Values[j]
		}
		if err := scratch.SetFlat(rec); err != nil {
			return err
		}
		lossAt[i] = scratch.Loss(cs.Items())
		fmt.Printf("%8.2f %14d %16.1f %12.5f\n",
			psi, sp.K(), psi*52, lossAt[i])
	}

	phi, err := optimize.FitPhi(psis, lossAt)
	if err != nil {
		return err
	}
	fmt.Println("\nAkima φ fit (interpolated):")
	for _, psi := range []float64{0.08, 0.3, 0.6, 0.9} {
		fmt.Printf("  φ(%.2f) = %.5f\n", psi, phi.Predict(psi))
	}

	// Eq. (7) under different peer-value scenarios. Both sides share the
	// same φ here; what varies is how much each model is worth to the other.
	fmt.Println("\nEq. (7) solutions (S = 52 MB, B = 31 Mbps, T_B = 15 s):")
	fmt.Printf("%28s %8s %8s %10s\n", "scenario", "ψ_send", "ψ_recv", "T_c (s)")
	scenarios := []struct {
		name                   string
		selfOnPeer, peerOnSelf float64
	}{
		{"both valuable", baseLoss + 0.08, baseLoss + 0.08},
		{"only peer valuable", baseLoss + 0.08, baseLoss + 0.001},
		{"only mine valuable", baseLoss + 0.001, baseLoss + 0.08},
		{"neither valuable", baseLoss + 0.001, baseLoss + 0.001},
	}
	for _, sc := range scenarios {
		sol := optimize.Solve(optimize.Problem{
			PhiSelf:         phi,
			PhiPeer:         phi,
			LossSelfOnPeer:  sc.selfOnPeer,
			LossPeerOnSelf:  sc.peerOnSelf,
			ModelBytes:      52_000_000,
			MinBandwidthBps: 31e6,
			TimeBudget:      15,
			ContactTime:     60,
			LambdaC:         0.0008,
		})
		fmt.Printf("%28s %8.2f %8.2f %10.1f\n", sc.name, sol.PsiSelf, sol.PsiPeer, sol.TransferTime)
	}
	return nil
}
