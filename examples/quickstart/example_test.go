package main

// Example runs the quickstart walkthrough end to end and pins its printed
// output. Every stream is seeded, so the whole Algorithm 1 + Algorithm 2
// chain — data collection, local training, coreset construction, value
// assessment, φ fitting, the Eq. (7) solve, and Eq. (8) aggregation — must
// reproduce bit for bit; `go test ./examples/quickstart` turns the example
// into a regression test over the full stack.
func Example() {
	if err := run(); err != nil {
		panic(err)
	}
	// Output:
	// Collecting driving data for two vehicles (2 fps)...
	// Local training: 400 steps each on their own data...
	// Coresets built: |C_A| = 100 (400 kB on the wire), |C_B| = 100
	//
	// Value assessment (weighted losses):
	//   f(x_A; C_A) = 0.0040   f(x_A; C_B) = 0.0309
	//   f(x_B; C_B) = 0.0080   f(x_B; C_A) = 0.0393
	//   → B's model is VALUABLE to A (gap 0.0229)
	//   → A's model is VALUABLE to B (gap 0.0353)
	//
	// φ_A samples (ψ → loss on C_A): (0.05, 0.8056) (0.20, 0.7852) (0.50, 0.7095) (1.00, 0.0040)
	//
	// Eq. (7) solution: ψ_A = 1.00 (A sends), ψ_B = 0.00 (A receives)
	//   expected gains: A ← 0.0000, B ← 0.0353; transfer time 13.4s of the 15s budget
	//
	// Dataset expansion: |D_A| 600 → 700 (absorbed 100 coreset frames)
	//
	// After the chat, A's loss on B's coreset: 0.0309 (was 0.0309)
}
