// Quickstart: one complete LbChat "chat" between two vehicles, step by step.
//
// Two vehicles collect driving data in different parts of the map, train
// local models, and then meet. The example walks through Algorithm 2's
// pairwise exchange explicitly: coreset construction (Algorithm 1), value
// assessment on the exchanged coresets, φ-curve fitting, the Eq. (7)
// compression optimization, the transfer, and the Eq. (8) aggregation —
// printing every intermediate quantity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"lbchat/internal/bev"
	"lbchat/internal/compress"
	"lbchat/internal/coreset"
	"lbchat/internal/model"
	"lbchat/internal/optimize"
	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Set the stage: a driving world and two vehicles with data. -----
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		return err
	}
	rng := simrand.New(42)
	w, err := world.New(m, world.SpawnConfig{Experts: 2, BackgroundCars: 20, Pedestrians: 80}, rng)
	if err != nil {
		return err
	}
	mcfg := model.DefaultConfig()
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	fmt.Println("Collecting driving data for two vehicles (2 fps)...")
	datasets := world.CollectDataset(w, ras, mcfg.NumWaypoints, 600, 0.5)
	dataA, dataB := datasets[0], datasets[1]

	polA, err := model.New(mcfg, 1) // identical initialization, as the paper assumes
	if err != nil {
		return err
	}
	polB := polA.Clone()
	initFlat := polA.Flat()

	fmt.Println("Local training: 400 steps each on their own data...")
	rngA, rngB := rng.Derive("trainA"), rng.Derive("trainB")
	for step := 0; step < 400; step++ {
		polA.TrainStep(dataA.SampleBatch(16, rngA))
		polB.TrainStep(dataB.SampleBatch(16, rngB))
	}

	// --- Line 8: construct coresets with Algorithm 1. --------------------
	const coresetSize = 100
	lossesA := polA.PerSampleLosses(dataA.Items())
	csA, err := coreset.Build(dataA, lossesA, coresetSize, rng.Derive("csA"))
	if err != nil {
		return err
	}
	lossesB := polB.PerSampleLosses(dataB.Items())
	csB, err := coreset.Build(dataB, lossesB, coresetSize, rng.Derive("csB"))
	if err != nil {
		return err
	}
	fmt.Printf("Coresets built: |C_A| = %d (%0.f kB on the wire), |C_B| = %d\n",
		csA.Len(), float64(csA.Len()*4000)/1000, csB.Len())

	// --- Lines 9–12: exchange coresets and assess model value. ----------
	lossAonA := polA.Loss(csA.Items())
	lossAonB := polA.Loss(csB.Items())
	lossBonB := polB.Loss(csB.Items())
	lossBonA := polB.Loss(csA.Items())
	fmt.Printf("\nValue assessment (weighted losses):\n")
	fmt.Printf("  f(x_A; C_A) = %.4f   f(x_A; C_B) = %.4f\n", lossAonA, lossAonB)
	fmt.Printf("  f(x_B; C_B) = %.4f   f(x_B; C_A) = %.4f\n", lossBonB, lossBonA)
	fmt.Printf("  → B's model is %s to A (gap %.4f)\n",
		valueWord(lossAonB-lossBonB), lossAonB-lossBonB)
	fmt.Printf("  → A's model is %s to B (gap %.4f)\n",
		valueWord(lossBonA-lossAonA), lossBonA-lossAonA)

	// --- Fit φ curves: compressed-model loss vs ψ. -----------------------
	psis := []float64{0.05, 0.2, 0.5, 1.0}
	scratch := polA.Clone()
	fitFor := func(pol *model.Policy, cs *coreset.Coreset) (*optimize.PhiCurve, []float64, error) {
		flat := pol.Flat()
		losses := make([]float64, len(psis))
		for i, psi := range psis {
			delta := make([]float64, len(flat))
			for j := range flat {
				delta[j] = flat[j] - initFlat[j]
			}
			sp := compress.TopK(delta, int(psi*float64(len(delta))))
			rec := append([]float64(nil), initFlat...)
			for k, idx := range sp.Indices {
				rec[idx] += sp.Values[k]
			}
			if err := scratch.SetFlat(rec); err != nil {
				return nil, nil, err
			}
			losses[i] = scratch.Loss(cs.Items())
		}
		curve, err := optimize.FitPhi(psis, losses)
		return curve, losses, err
	}
	phiA, lossesPhiA, err := fitFor(polA, csA)
	if err != nil {
		return err
	}
	phiB, _, err := fitFor(polB, csB)
	if err != nil {
		return err
	}
	fmt.Printf("\nφ_A samples (ψ → loss on C_A):")
	for i, psi := range psis {
		fmt.Printf(" (%.2f, %.4f)", psi, lossesPhiA[i])
	}
	fmt.Println()

	// --- Line 13: optimize compression ratios with Eq. (7). -------------
	sol := optimize.Solve(optimize.Problem{
		PhiSelf:         phiA,
		PhiPeer:         phiB,
		LossSelfOnPeer:  lossAonB,
		LossPeerOnSelf:  lossBonA,
		ModelBytes:      52_000_000, // the paper's model size over the air
		MinBandwidthBps: 31e6,
		TimeBudget:      15,
		ContactTime:     40,
		LambdaC:         0.0008,
	})
	fmt.Printf("\nEq. (7) solution: ψ_A = %.2f (A sends), ψ_B = %.2f (A receives)\n",
		sol.PsiSelf, sol.PsiPeer)
	fmt.Printf("  expected gains: A ← %.4f, B ← %.4f; transfer time %.1fs of the 15s budget\n",
		sol.GainSelf, sol.GainPeer, sol.TransferTime)

	// --- Lines 14–15: transfer and aggregate with Eq. (8). --------------
	if sol.PsiPeer > 0 {
		flatB := polB.Flat()
		delta := make([]float64, len(flatB))
		for j := range flatB {
			delta[j] = flatB[j] - initFlat[j]
		}
		sp := compress.TopK(delta, int(sol.PsiPeer*float64(len(delta))))
		rec := append([]float64(nil), initFlat...)
		for k, idx := range sp.Indices {
			rec[idx] += sp.Values[k]
		}
		if err := scratch.SetFlat(rec); err != nil {
			return err
		}
		// Joint evaluation set: A's coreset ∪ B's coreset (fast path of §III-D).
		union := coreset.Merge(csA, csB)
		lossSelf := polA.Loss(union.Items())
		lossPeer := scratch.Loss(union.Items())
		wSelf := lossPeer / (lossSelf + lossPeer)
		wPeer := 1 - wSelf
		fmt.Printf("\nEq. (8) aggregation on C_A ∪ C_B: w_self = %.2f, w_peer = %.2f\n", wSelf, wPeer)
		selfFlat := polA.Flat()
		for i := range selfFlat {
			selfFlat[i] = wSelf*selfFlat[i] + wPeer*rec[i]
		}
		if err := polA.SetFlat(selfFlat); err != nil {
			return err
		}
	}

	// --- Line 16: expand A's dataset with B's coreset. -------------------
	before := dataA.Len()
	dataA.Absorb(csB.Data(), 1)
	fmt.Printf("\nDataset expansion: |D_A| %d → %d (absorbed %d coreset frames)\n",
		before, dataA.Len(), csB.Len())

	fmt.Printf("\nAfter the chat, A's loss on B's coreset: %.4f (was %.4f)\n",
		polA.Loss(csB.Items()), lossAonB)
	return nil
}

func valueWord(gap float64) string {
	if gap > 0.005 {
		return "VALUABLE"
	}
	return "of little value"
}
