// Coreset analysis: how well does Algorithm 1 summarize a driving dataset?
//
// The example collects a real driving dataset, then sweeps the coreset
// budget |C| and reports the ε of Definition II.2 realized on the trained
// model — |f(x;C) − f(x;D)| / f(x;D) — for layered sampling vs a uniform
// random subset, plus the wire size of each coreset. It closes with the
// merge-and-reduce path of §III-D, checking that the loss estimate survives
// a chain of merges at constant size.
//
//	go run ./examples/coreset-analysis
package main

import (
	"fmt"
	"math"
	"os"

	"lbchat/internal/bev"
	"lbchat/internal/coreset"
	"lbchat/internal/dataset"
	"lbchat/internal/model"
	"lbchat/internal/simrand"
	"lbchat/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coreset-analysis: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := world.NewMap(world.DefaultConfig())
	if err != nil {
		return err
	}
	rng := simrand.New(23)
	w, err := world.New(m, world.SpawnConfig{Experts: 1, BackgroundCars: 30, Pedestrians: 120}, rng)
	if err != nil {
		return err
	}
	mcfg := model.DefaultConfig()
	ras := bev.NewRasterizer(bev.DefaultConfig(), m)
	fmt.Println("Collecting 1500 driving frames...")
	data := world.CollectDataset(w, ras, mcfg.NumWaypoints, 1500, 0.5)[0]

	pol, err := model.New(mcfg, 1)
	if err != nil {
		return err
	}
	trng := rng.Derive("train")
	fmt.Println("Training the local model (600 steps)...")
	for step := 0; step < 600; step++ {
		pol.TrainStep(data.SampleBatch(16, trng))
	}
	fullLoss := pol.Loss(data.Items())
	fmt.Printf("Full-dataset loss f(x;D) = %.5f over %d frames\n\n", fullLoss, data.Len())

	losses := pol.PerSampleLosses(data.Items())
	lossFn := func(items []dataset.Weighted) float64 { return pol.Loss(items) }

	fmt.Printf("%8s %12s %14s %14s\n", "|C|", "wire size", "layered ε", "uniform ε")
	for _, size := range []int{15, 50, 150, 500, 1500} {
		const trials = 8
		var layered, uniform float64
		for trial := 0; trial < trials; trial++ {
			tr := simrand.New(uint64(100 + trial))
			cs, err := coreset.Build(data, losses, size, tr)
			if err != nil {
				return err
			}
			layered += coreset.ApproximationError(cs, data, lossFn)

			k := size
			if k > data.Len() {
				k = data.Len()
			}
			perm := tr.Perm(data.Len())[:k]
			sub := coreset.FromDataset(data.Subset(perm))
			uniform += coreset.ApproximationError(sub, data, lossFn)
		}
		fmt.Printf("%8d %9d kB %14.4f %14.4f\n",
			size, size*4000/1000, layered/trials, uniform/trials)
	}

	// Merge-and-reduce: chain 6 merges at constant size and watch the
	// estimate.
	fmt.Println("\nMerge-and-reduce chain (|C| held at 150):")
	mrng := rng.Derive("merge")
	parts := 6
	per := data.Len() / parts
	var acc *coreset.Coreset
	for i := 0; i < parts; i++ {
		idx := make([]int, 0, per)
		for j := i * per; j < (i+1)*per; j++ {
			idx = append(idx, j)
		}
		part := data.Subset(idx)
		partLosses := pol.PerSampleLosses(part.Items())
		cs, err := coreset.Build(part, partLosses, 150, mrng)
		if err != nil {
			return err
		}
		if acc == nil {
			acc = cs
		} else {
			if acc, err = coreset.MergeReduce(acc, cs, 150, mrng); err != nil {
				return err
			}
		}
		est := pol.Loss(acc.Items())
		fmt.Printf("  after part %d: |C| = %3d, f(x;C) = %.5f (ε = %.3f)\n",
			i+1, acc.Len(), est, math.Abs(est-fullLoss)/fullLoss)
	}
	return nil
}
