// Convoy: a fleet co-simulation on the public experiment API.
//
// Eight vehicles roam the town collecting data, then train collaboratively
// under LbChat while a mobility trace drives their opportunistic encounters.
// The example prints the fleet's probe-loss curve, the communication
// statistics, and a per-vehicle summary — the minimal version of what
// cmd/lbchat-bench runs for every protocol.
//
//	go run ./examples/convoy
package main

import (
	"fmt"
	"os"

	"lbchat/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "convoy: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scale := experiments.Scale{
		Name:     "convoy",
		Vehicles: 8, BackgroundCars: 50, Pedestrians: 250,
		CollectTicks: 900, TraceTicks: 7200,
		TrainDuration: 900, ProbeFrames: 64,
		EvalTrials: 6, EvalFleetSample: 2, RoutesPerCondition: 4,
		Seed: 11,
	}
	fmt.Printf("Building a %d-vehicle convoy world...\n", scale.Vehicles)
	env, err := experiments.BuildEnv(scale)
	if err != nil {
		return err
	}

	fmt.Printf("Training under LbChat for %.0fs of virtual time...\n", scale.TrainDuration)
	lbchat, err := env.RunProtocol(experiments.ProtoLbChat, false, nil)
	if err != nil {
		return err
	}

	fmt.Println("\nFleet probe loss over virtual time:")
	fmt.Print(lbchat.Curve.Render())

	stats := lbchat.Recv
	fmt.Printf("\nModel transfers under wireless loss: %d attempted, %d received (%.0f%%)\n",
		stats.Attempts, stats.Successes, 100*stats.Rate())

	fmt.Println("\nPer-vehicle final probe loss:")
	for i, pol := range lbchat.Fleet {
		fmt.Printf("  vehicle %d: %.4f\n", i, pol.Loss(env.Probe))
	}

	// Contrast with a gossip baseline under the same constraints.
	fmt.Println("\nFor contrast, the DP gossip baseline on the same workload:")
	dp, err := env.RunProtocol(experiments.ProtoDP, false, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  final loss: LbChat %.4f vs DP %.4f\n", lbchat.Curve.Final(), dp.Curve.Final())
	fmt.Printf("  receive rate: LbChat %.0f%% vs DP %.0f%%\n",
		100*lbchat.Recv.Rate(), 100*dp.Recv.Rate())
	return nil
}
